//! SPEC CFP2006 loop-pattern stand-ins (Table 1).
//!
//! The paper profiles the SPEC CFP2006 floating-point suite and analyzes
//! every loop above 10% of execution cycles. SPEC sources cannot ship
//! here, so each benchmark is represented by a small Kern program whose hot
//! loop reproduces that benchmark's *row signature* in Table 1 — the
//! combination of compiler vectorization success (Percent Packed), inherent
//! concurrency, and unit- vs non-unit-stride potential the paper reports:
//!
//! | stand-in | pattern | expected signature |
//! |---|---|---|
//! | `spec_410_bwaves` | mid-dimension indexing + `mod` wraparound | low packed, unit & non-unit potential |
//! | `spec_433_milc` | array-of-structs complex mat-vec | 0 packed, high non-unit potential |
//! | `spec_434_zeusmp` | 3-D advection stencil, two loops (one wrapped) | partial packed, high unit potential |
//! | `spec_435_gromacs` | indirection through a neighbor list | ~0 packed, concurrency present |
//! | `spec_436_cactusadm` | leapfrog update on separate arrays | ~100 packed, huge concurrency |
//! | `spec_437_leslie3d` | flux differences | ~100 packed |
//! | `spec_444_namd` | interactions through nested calls | 0 packed, high hidden potential |
//! | `spec_447_dealii` | guarded accumulation | 0 packed (control flow) |
//! | `spec_450_soplex` | sparse scatter/gather | 0 packed |
//! | `spec_453_povray` | data-dependent worklist | 0 packed, little potential |
//! | `spec_454_calculix` | rank-1 frontal update | high packed |
//! | `spec_459_gemsfdtd` | FDTD field update | ~100 packed |
//! | `spec_465_tonto` | intrinsic-heavy integral loop | high packed |
//! | `spec_470_lbm` | stream-collide sweep | ~100 packed, huge concurrency |
//! | `spec_481_wrf` | coefficient stencil sweep | high packed |
//! | `spec_482_sphinx3` | gaussian-mixture reductions | packed via reductions > analysis vec ops |

use crate::{Group, Kernel, Variant};

const RND: &str = r#"
double rnd(int k) {
    int h = (k * 1103515245 + 12345) % 100000;
    if (h < 0) { h = -h; }
    return (double)h * 0.00001;
}
"#;

fn make(name: &'static str, source: String, outputs: &'static [&'static str]) -> Kernel {
    Kernel {
        name,
        group: Group::Spec,
        variant: Variant::Sole,
        source,
        outputs,
    }
}

/// All SPEC stand-ins.
pub fn kernels() -> Vec<Kernel> {
    vec![
        spec_410_bwaves(),
        spec_433_milc(),
        spec_434_zeusmp(),
        spec_435_gromacs(),
        spec_436_cactusadm(),
        spec_437_leslie3d(),
        spec_444_namd(),
        spec_447_dealii(),
        spec_450_soplex(),
        spec_453_povray(),
        spec_454_calculix(),
        spec_459_gemsfdtd(),
        spec_465_tonto(),
        spec_470_lbm(),
        spec_481_wrf(),
        spec_482_sphinx3(),
    ]
}

/// 410.bwaves: the study kernel doubles as the Table 1 stand-in.
pub fn spec_410_bwaves() -> Kernel {
    let mut k = crate::studies::bwaves_original();
    k.name = "spec_410_bwaves";
    k.group = Group::Spec;
    k.variant = Variant::Sole;
    k
}

/// 433.milc: the study kernel doubles as the Table 1 stand-in.
pub fn spec_433_milc() -> Kernel {
    let mut k = crate::studies::milc_original();
    k.name = "spec_433_milc";
    k.group = Group::Spec;
    k.variant = Variant::Sole;
    k
}

/// 435.gromacs: the study kernel doubles as the Table 1 stand-in.
pub fn spec_435_gromacs() -> Kernel {
    let mut k = crate::studies::gromacs_original();
    k.name = "spec_435_gromacs";
    k.group = Group::Spec;
    k.variant = Variant::Sole;
    k
}

/// 434.zeusmp `advx3`-style advection: one clean sweep (vectorizable) and
/// one wraparound sweep (`mod` neighbor, not vectorizable) — partial packed.
pub fn spec_434_zeusmp() -> Kernel {
    let source = format!(
        r#"
const int N = 20;
double v[N][N][N];
double dv[N][N][N];
{RND}
void init() {{
    for (int k = 0; k < N; k++)
        for (int j = 0; j < N; j++)
            for (int i = 0; i < N; i++)
                v[k][j][i] = rnd((k * N + j) * N + i);
}}
void kernel() {{
    for (int k = 1; k < N - 1; k++)
        for (int j = 1; j < N - 1; j++)
            for (int i = 1; i < N - 1; i++)
                dv[k][j][i] = 0.5 * v[k][j][i] +
                              0.2 * (v[k][j][i-1] + v[k][j][i+1]) +
                              0.05 * (v[k][j-1][i] + v[k+1][j][i]);
    for (int k = 0; k < N; k++)
        for (int j = 0; j < N; j++)
            for (int i = 0; i < N; i++) {{
                int ip = (i + 1) % N;
                dv[k][j][i] = dv[k][j][i] + 0.1 * v[k][j][ip];
            }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_434_zeusmp", source, &["dv"])
}

/// 436.cactusADM StaggeredLeapfrog: field update from distinct arrays —
/// fully vectorized by the compiler and fully parallel.
pub fn spec_436_cactusadm() -> Kernel {
    let source = format!(
        r#"
const int N = 1000;
double adm_old[N];
double adm_now[N];
double adm_new[N];
double dt = 0.01;
{RND}
void init() {{
    for (int i = 0; i < N; i++) {{
        adm_old[i] = rnd(i);
        adm_now[i] = rnd(i + 3000);
    }}
}}
void kernel() {{
    for (int i = 0; i < N; i++)
        adm_new[i] = adm_old[i] + dt * (adm_now[i] * 2.0 - adm_old[i] * 0.5);
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_436_cactusadm", source, &["adm_new"])
}

/// 437.leslie3d `tml.f`-style flux differences.
pub fn spec_437_leslie3d() -> Kernel {
    let source = format!(
        r#"
const int N = 600;
double q[N];
double flux[N];
double resid[N];
{RND}
void init() {{
    for (int i = 0; i < N; i++) {{ q[i] = rnd(i); }}
}}
void kernel() {{
    for (int i = 0; i < N - 1; i++)
        flux[i] = 0.5 * (q[i + 1] + q[i]) - 0.125 * (q[i + 1] - q[i]);
    for (int i = 1; i < N - 1; i++)
        resid[i] = flux[i] - flux[i - 1];
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_437_leslie3d", source, &["resid"])
}

/// 444.namd: pair interactions computed through nested function calls (the
/// paper notes the macro-generated loops are opaque and unvectorized, yet
/// the dynamic analysis shows high potential).
pub fn spec_444_namd() -> Kernel {
    let source = format!(
        r#"
const int N = 128;
double px[N];
double py[N];
double f[N];
{RND}
double sq(double v) {{ return v * v; }}
double interact(double r2) {{
    double inv = 1.0 / (r2 + 1.0);
    return inv * inv - 0.5 * inv;
}}
void init() {{
    for (int i = 0; i < N; i++) {{
        px[i] = rnd(i);
        py[i] = rnd(i + 777);
        f[i] = 0.0;
    }}
}}
void kernel() {{
    for (int i = 0; i < N; i++) {{
        double r2 = sq(px[i]) + sq(py[i]);
        f[i] = f[i] + interact(r2);
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_444_namd", source, &["f"])
}

/// 447.dealII: guarded accumulation (data-dependent branch in the body).
pub fn spec_447_dealii() -> Kernel {
    let source = format!(
        r#"
const int N = 256;
double w[N];
double cell[N];
double out[N];
{RND}
void init() {{
    for (int i = 0; i < N; i++) {{
        w[i] = rnd(i) - 0.5;
        cell[i] = rnd(i + 2000);
    }}
}}
void kernel() {{
    for (int i = 0; i < N; i++) {{
        if (w[i] > 0.0) {{
            out[i] = cell[i] * w[i] + 1.0;
        }} else {{
            out[i] = cell[i] * 0.25;
        }}
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_447_dealii", source, &["out"])
}

/// 450.soplex: sparse vector scatter (indirection defeats the compiler).
pub fn spec_450_soplex() -> Kernel {
    let source = format!(
        r#"
const int NNZ = 192;
const int DIM = 64;
int idx[NNZ];
double val[NNZ];
double vec[DIM];
double out[DIM];
{RND}
void init() {{
    for (int i = 0; i < NNZ; i++) {{
        idx[i] = (i * 29) % DIM;
        val[i] = rnd(i) - 0.5;
    }}
    for (int i = 0; i < DIM; i++) {{ vec[i] = rnd(i + 900); }}
}}
void kernel() {{
    for (int i = 0; i < NNZ; i++) {{
        out[idx[i]] = out[idx[i]] + val[i] * vec[idx[i]];
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_450_soplex", source, &["out"])
}

/// 453.povray `bbox`-style worklist: a priority-queue-driven traversal with
/// heavily data-dependent control flow (the paper's "limitations" case).
pub fn spec_453_povray() -> Kernel {
    let source = format!(
        r#"
const int NODES = 64;
double bound[NODES];
int left[NODES];
int right[NODES];
int queue[256];
double hit = 0.0;
{RND}
void init() {{
    for (int i = 0; i < NODES; i++) {{
        bound[i] = rnd(i);
        int l = 2 * i + 1;
        int r = 2 * i + 2;
        if (l >= NODES) {{ l = -1; }}
        if (r >= NODES) {{ r = -1; }}
        left[i] = l;
        right[i] = r;
    }}
}}
void kernel() {{
    int head = 0;
    int tail = 0;
    queue[tail] = 0;
    tail = tail + 1;
    double ray = 0.37;
    double acc = 0.0;
    while (head < tail) {{
        int node = queue[head];
        head = head + 1;
        double d = bound[node] - ray;
        double d2 = d * d;
        if (d2 < 0.2) {{
            acc = acc + d2 * 0.5;
            if (left[node] >= 0 && tail < 255) {{
                queue[tail] = left[node];
                tail = tail + 1;
            }}
            if (right[node] >= 0 && tail < 255) {{
                queue[tail] = right[node];
                tail = tail + 1;
            }}
        }}
    }}
    hit = acc;
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_453_povray", source, &["hit"])
}

/// 454.calculix frontal-matrix rank-1 update.
pub fn spec_454_calculix() -> Kernel {
    let source = format!(
        r#"
const int N = 32;
double a[N][N];
double lcol[N];
double urow[N];
{RND}
void init() {{
    for (int i = 0; i < N; i++) {{
        lcol[i] = rnd(i) - 0.5;
        urow[i] = rnd(i + 111) - 0.5;
        for (int j = 0; j < N; j++) {{ a[i][j] = rnd(i * N + j); }}
    }}
}}
void kernel() {{
    for (int i = 0; i < N; i++) {{
        double li = lcol[i];
        for (int j = 0; j < N; j++) {{
            a[i][j] = a[i][j] - li * urow[j];
        }}
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_454_calculix", source, &["a"])
}

/// 459.GemsFDTD `update.F90`-style field update.
pub fn spec_459_gemsfdtd() -> Kernel {
    let source = format!(
        r#"
const int N = 400;
double hfield[N];
double efield[N];
double cconst = 0.35;
{RND}
void init() {{
    for (int i = 0; i < N; i++) {{
        hfield[i] = rnd(i);
        efield[i] = rnd(i + 1234);
    }}
}}
void kernel() {{
    for (int i = 0; i < N - 1; i++)
        hfield[i] = hfield[i] + cconst * (efield[i + 1] - efield[i]);
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_459_gemsfdtd", source, &["hfield"])
}

/// 465.tonto: intrinsic-heavy integral evaluation (exp/sqrt), still
/// unit-stride and vectorizable with a vector math library.
pub fn spec_465_tonto() -> Kernel {
    let source = format!(
        r#"
const int N = 160;
double alpha[N];
double dist[N];
double integral[N];
{RND}
void init() {{
    for (int i = 0; i < N; i++) {{
        alpha[i] = rnd(i) + 0.1;
        dist[i] = rnd(i + 555);
    }}
}}
void kernel() {{
    for (int i = 0; i < N; i++) {{
        double a = alpha[i];
        double r = dist[i];
        integral[i] = exp(0.0 - a * r * r) * sqrt(a) * 1.128379167;
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_465_tonto", source, &["integral"])
}

/// 470.lbm `lbm.c:186`-style stream-and-collide sweep: one giant loop with
/// nearly all the program's cycles, fully packed.
pub fn spec_470_lbm() -> Kernel {
    let source = format!(
        r#"
const int CELLS = 600;
double src[CELLS];
double dst[CELLS];
double feq[CELLS];
double omega = 1.85;
{RND}
void init() {{
    for (int i = 0; i < CELLS; i++) {{
        src[i] = rnd(i);
        feq[i] = rnd(i + 8080);
    }}
}}
void kernel() {{
    for (int i = 0; i < CELLS; i++)
        dst[i] = src[i] - omega * (src[i] - feq[i]);
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_470_lbm", source, &["dst"])
}

/// 481.wrf `solve_em`-style coefficient stencil sweep.
pub fn spec_481_wrf() -> Kernel {
    let source = format!(
        r#"
const int N = 40;
double u[N][N];
double tend[N][N];
double c1 = 0.45;
double c2 = 0.275;
{RND}
void init() {{
    for (int j = 0; j < N; j++)
        for (int i = 0; i < N; i++)
            u[j][i] = rnd(j * N + i);
}}
void kernel() {{
    for (int j = 1; j < N - 1; j++)
        for (int i = 1; i < N - 1; i++)
            tend[j][i] = c1 * u[j][i] + c2 * (u[j][i+1] + u[j][i-1]) -
                         0.1 * (u[j+1][i] - u[j-1][i]);
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_481_wrf", source, &["tend"])
}

/// 482.sphinx3 gaussian-mixture scoring: dot-product reductions. icc
/// vectorizes the reduction, while the base dynamic analysis treats the
/// accumulation chain as serial — the case where Percent Packed exceeds
/// the analysis' vectorizable ops (paper §4.1).
pub fn spec_482_sphinx3() -> Kernel {
    let source = format!(
        r#"
const int MIX = 8;
const int DIM = 32;
double feat[DIM];
double mean[MIX][DIM];
double varr[MIX][DIM];
double score[MIX];
{RND}
void init() {{
    for (int d = 0; d < DIM; d++) {{ feat[d] = rnd(d); }}
    for (int m = 0; m < MIX; m++)
        for (int d = 0; d < DIM; d++) {{
            mean[m][d] = rnd(m * DIM + d + 100);
            varr[m][d] = rnd(m * DIM + d + 900) + 0.5;
        }}
}}
void kernel() {{
    for (int m = 0; m < MIX; m++) {{
        double acc = 0.0;
        for (int d = 0; d < DIM; d++) {{
            double diff = feat[d] - mean[m][d];
            acc += diff * diff * varr[m][d];
        }}
        score[m] = acc;
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    make("spec_482_sphinx3", source, &["score"])
}
