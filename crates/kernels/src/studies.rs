//! The paper's case-study kernels (§4.4, Tables 2 and 4), each as an
//! *original* and a *transformed* Kern program computing identical results.
//!
//! | kernel | original obstacle | paper's transformation |
//! |---|---|---|
//! | `gauss_seidel` | loop-carried deps in both loops | split the 9-point sum into a fully-parallel 8-add loop + a short recurrence loop (Listing 5) |
//! | `pde_solver` | data-dependent boundary `if` | hoist the boundary test to block level; interior blocks get a branch-free loop (Listing 6) |
//! | `bwaves` | stride-25 layout + `mod` wraparound | move `i` to the fastest-varying dimension and peel the last iteration (Listing 7) |
//! | `milc` | array-of-structs complex arithmetic | convert the lattice of matrices to a matrix of lattices, SoA (Listing 8) |
//! | `gromacs` | indirection through `jjnr` | strip-mine by 4 and distribute loads/compute/stores (Listing 9) |

use crate::{Group, Kernel, Variant};

/// Shared pseudo-random initializer (deterministic, integer LCG mapped to
/// [0, 1)).
const RND: &str = r#"
double rnd(int k) {
    int h = (k * 1103515245 + 12345) % 100000;
    if (h < 0) { h = -h; }
    return (double)h * 0.00001;
}
"#;

/// The case-study kernels in both variants.
pub fn kernels() -> Vec<Kernel> {
    vec![
        gauss_seidel_original(),
        gauss_seidel_transformed(),
        pde_solver_original(),
        pde_solver_transformed(),
        bwaves_original(),
        bwaves_transformed(),
        milc_original(),
        milc_transformed(),
        gromacs_original(),
        gromacs_transformed(),
    ]
}

/// 9-point Gauss-Seidel stencil, original (paper Listing 5 top).
pub fn gauss_seidel_original() -> Kernel {
    let source = format!(
        r#"
const int N = 48;
const int T = 3;
double A[N][N];
{RND}
void init() {{
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            A[i][j] = rnd(i * N + j);
}}
void kernel() {{
    double cnst = 1.0 / 9.0;
    for (int t = 0; t < T; t++)
        for (int i = 1; i < N - 1; i++)
            for (int j = 1; j < N - 1; j++)
                A[i][j] = (A[i-1][j-1] + A[i-1][j] + A[i-1][j+1] +
                           A[i][j-1] + A[i][j] + A[i][j+1] +
                           A[i+1][j-1] + A[i+1][j] + A[i+1][j+1]) * cnst;
}}
void main() {{ init(); kernel(); }}
"#
    );
    Kernel {
        name: "gauss_seidel",
        group: Group::Study,
        variant: Variant::Original,
        source,
        outputs: &["A"],
    }
}

/// Gauss-Seidel with the paper's loop split (Listing 5 bottom): the first
/// `j` loop (eight adds into `temp`) carries no dependence and vectorizes;
/// only the short `A[i][j-1] + temp[j]` recurrence stays scalar.
pub fn gauss_seidel_transformed() -> Kernel {
    let source = format!(
        r#"
const int N = 48;
const int T = 3;
double A[N][N];
double temp[N];
{RND}
void init() {{
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            A[i][j] = rnd(i * N + j);
}}
void kernel() {{
    double cnst = 1.0 / 9.0;
    for (int t = 0; t < T; t++) {{
        for (int i = 1; i < N - 1; i++) {{
            for (int j = 1; j < N - 1; j++)
                temp[j] = A[i-1][j-1] + A[i-1][j] + A[i-1][j+1] +
                          A[i][j] + A[i][j+1] +
                          A[i+1][j-1] + A[i+1][j] + A[i+1][j+1];
            for (int j = 1; j < N - 1; j++)
                A[i][j] = cnst * (A[i][j-1] + temp[j]);
        }}
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    Kernel {
        name: "gauss_seidel",
        group: Group::Study,
        variant: Variant::Transformed,
        source,
        outputs: &["A"],
    }
}

const PDE_COMMON: &str = r#"
const int B = 16;
const int G = 4;
const int M = 64;
double x[M][M];
double f[M][M];
double hydhx = 1.0;
double hxdhy = 1.0;
double sc = 0.1;
"#;

/// PETSc ex5 solid-fuel-ignition block kernel, original (Listing 6 top):
/// the boundary test inside the innermost loop defeats vectorization.
pub fn pde_solver_original() -> Kernel {
    let source = format!(
        r#"
{PDE_COMMON}
{RND}
void init() {{
    for (int j = 0; j < M; j++)
        for (int i = 0; i < M; i++)
            x[j][i] = rnd(j * M + i);
}}
void block_kernel(int xs, int ys, int xm, int ym) {{
    for (int j = ys; j < ys + ym; j++) {{
        for (int i = xs; i < xs + xm; i++) {{
            if (i == 0 || j == 0 || i == M - 1 || j == M - 1) {{
                f[j][i] = x[j][i];
            }} else {{
                double u = x[j][i];
                double uxx = (2.0 * u - x[j][i-1] - x[j][i+1]) * hydhx;
                double uyy = (2.0 * u - x[j-1][i] - x[j+1][i]) * hxdhy;
                f[j][i] = uxx + uyy - sc * exp(u);
            }}
        }}
    }}
}}
void kernel() {{
    for (int by = 0; by < G; by++)
        for (int bx = 0; bx < G; bx++)
            block_kernel(bx * B, by * B, B, B);
}}
void main() {{ init(); kernel(); }}
"#
    );
    Kernel {
        name: "pde_solver",
        group: Group::Study,
        variant: Variant::Original,
        source,
        outputs: &["f"],
    }
}

/// PDE solver with the boundary `if` hoisted to block level (Listing 6
/// bottom): interior blocks run a branch-free, vectorizable loop.
pub fn pde_solver_transformed() -> Kernel {
    let source = format!(
        r#"
{PDE_COMMON}
{RND}
void init() {{
    for (int j = 0; j < M; j++)
        for (int i = 0; i < M; i++)
            x[j][i] = rnd(j * M + i);
}}
void block_boundary(int xs, int ys, int xm, int ym) {{
    for (int j = ys; j < ys + ym; j++) {{
        for (int i = xs; i < xs + xm; i++) {{
            if (i == 0 || j == 0 || i == M - 1 || j == M - 1) {{
                f[j][i] = x[j][i];
            }} else {{
                double u = x[j][i];
                double uxx = (2.0 * u - x[j][i-1] - x[j][i+1]) * hydhx;
                double uyy = (2.0 * u - x[j-1][i] - x[j+1][i]) * hxdhy;
                f[j][i] = uxx + uyy - sc * exp(u);
            }}
        }}
    }}
}}
void block_interior(int xs, int ys, int xm, int ym) {{
    for (int j = ys; j < ys + ym; j++) {{
        for (int i = xs; i < xs + xm; i++) {{
            double u = x[j][i];
            double uxx = (2.0 * u - x[j][i-1] - x[j][i+1]) * hydhx;
            double uyy = (2.0 * u - x[j-1][i] - x[j+1][i]) * hxdhy;
            f[j][i] = uxx + uyy - sc * exp(u);
        }}
    }}
}}
void kernel() {{
    for (int by = 0; by < G; by++) {{
        for (int bx = 0; bx < G; bx++) {{
            int xs = bx * B;
            int ys = by * B;
            if (xs == 0 || ys == 0 || xs + B == M || ys + B == M) {{
                block_boundary(xs, ys, B, B);
            }} else {{
                block_interior(xs, ys, B, B);
            }}
        }}
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    Kernel {
        name: "pde_solver",
        group: Group::Study,
        variant: Variant::Transformed,
        source,
        outputs: &["f"],
    }
}

const BWAVES_SIZES: &str = r#"
const int NX = 8;
const int NY = 5;
const int NZ = 5;
"#;

/// 410.bwaves `jacobi_lam`-style loop, original (Listing 7 top): the `i`
/// index addresses a middle array dimension (stride 25 elements) and the
/// wraparound neighbor uses `mod`.
pub fn bwaves_original() -> Kernel {
    let source = format!(
        r#"
{BWAVES_SIZES}
double je[NZ][NY][NX][4][4];
double q[NZ][NY][NX][4];
double out_ros = 0.0;
double canon[NZ][NY][NX][4][4];
{RND}
void init() {{
    for (int k = 0; k < NZ; k++)
        for (int j = 0; j < NY; j++)
            for (int i = 0; i < NX; i++)
                for (int m = 0; m < 4; m++)
                    q[k][j][i][m] = rnd(((k * NY + j) * NX + i) * 4 + m);
}}
void kernel() {{
    double ros_acc = 0.0;
    for (int k = 0; k < NZ; k++) {{
        int kp1 = (k + 1) % NZ;
        for (int j = 0; j < NY; j++) {{
            int jp1 = (j + 1) % NY;
            for (int i = 0; i < NX; i++) {{
                int ip1 = (i + 1) % NX;
                double ros = q[kp1][jp1][ip1][0];
                je[k][j][i][0][0] = ros * 1.1 + q[k][j][i][0];
                je[k][j][i][0][1] = ros * 2.2 - q[k][j][i][1];
                je[k][j][i][1][0] = ros * 3.3 + q[k][j][i][2];
                je[k][j][i][1][1] = ros * 4.4 - q[k][j][i][3];
                ros_acc += ros;
            }}
        }}
    }}
    out_ros = ros_acc;
}}
void finish() {{
    for (int k = 0; k < NZ; k++)
        for (int j = 0; j < NY; j++)
            for (int i = 0; i < NX; i++)
                for (int m1 = 0; m1 < 4; m1++)
                    for (int m2 = 0; m2 < 4; m2++)
                        canon[k][j][i][m1][m2] = je[k][j][i][m1][m2];
}}
void main() {{ init(); kernel(); finish(); }}
"#
    );
    Kernel {
        name: "bwaves",
        group: Group::Study,
        variant: Variant::Original,
        source,
        outputs: &["canon", "out_ros"],
    }
}

/// bwaves after the paper's data-layout transformation (Listing 7 bottom):
/// `i` becomes the fastest dimension of `je` and `q`, and the last
/// iteration is peeled so `ip1 = i + 1` is affine.
pub fn bwaves_transformed() -> Kernel {
    let source = format!(
        r#"
{BWAVES_SIZES}
double je[NZ][NY][4][4][NX];
double q[NZ][NY][4][NX];
double out_ros = 0.0;
double canon[NZ][NY][NX][4][4];
{RND}
void init() {{
    for (int k = 0; k < NZ; k++)
        for (int j = 0; j < NY; j++)
            for (int i = 0; i < NX; i++)
                for (int m = 0; m < 4; m++)
                    q[k][j][m][i] = rnd(((k * NY + j) * NX + i) * 4 + m);
}}
void kernel() {{
    double ros_acc = 0.0;
    for (int k = 0; k < NZ; k++) {{
        int kp1 = (k + 1) % NZ;
        for (int j = 0; j < NY; j++) {{
            int jp1 = (j + 1) % NY;
            for (int i = 0; i < NX - 1; i++) {{
                int ip1 = i + 1;
                double ros = q[kp1][jp1][0][ip1];
                je[k][j][0][0][i] = ros * 1.1 + q[k][j][0][i];
                je[k][j][0][1][i] = ros * 2.2 - q[k][j][1][i];
                je[k][j][1][0][i] = ros * 3.3 + q[k][j][2][i];
                je[k][j][1][1][i] = ros * 4.4 - q[k][j][3][i];
                ros_acc += ros;
            }}
            int i = NX - 1;
            double ros = q[kp1][jp1][0][0];
            je[k][j][0][0][i] = ros * 1.1 + q[k][j][0][i];
            je[k][j][0][1][i] = ros * 2.2 - q[k][j][1][i];
            je[k][j][1][0][i] = ros * 3.3 + q[k][j][2][i];
            je[k][j][1][1][i] = ros * 4.4 - q[k][j][3][i];
            ros_acc += ros;
        }}
    }}
    out_ros = ros_acc;
}}
void finish() {{
    for (int k = 0; k < NZ; k++)
        for (int j = 0; j < NY; j++)
            for (int i = 0; i < NX; i++)
                for (int m1 = 0; m1 < 4; m1++)
                    for (int m2 = 0; m2 < 4; m2++)
                        canon[k][j][i][m1][m2] = je[k][j][m1][m2][i];
}}
void main() {{ init(); kernel(); finish(); }}
"#
    );
    Kernel {
        name: "bwaves",
        group: Group::Study,
        variant: Variant::Transformed,
        source,
        outputs: &["canon", "out_ros"],
    }
}

const MILC_SIZES: &str = "const int SITES = 48;\n";

/// 433.milc su3 matrix–vector product over a lattice, original AoS layout
/// (Listing 8 top): complex real/imaginary interleaving gives stride-2
/// (16-byte) access.
pub fn milc_original() -> Kernel {
    let source = format!(
        r#"
struct complex {{ double r; double i; }};
struct su3_vector {{ complex c[3]; }};
struct su3_matrix {{ complex e[3][3]; }};
{MILC_SIZES}
su3_matrix lattice[SITES];
su3_vector vec[SITES];
su3_vector out_vec[SITES];
double canon_r[3][SITES];
double canon_i[3][SITES];
{RND}
void init() {{
    for (int s = 0; s < SITES; s++) {{
        for (int i = 0; i < 3; i++) {{
            vec[s].c[i].r = rnd(s * 6 + i);
            vec[s].c[i].i = rnd(s * 6 + 3 + i);
            for (int j = 0; j < 3; j++) {{
                lattice[s].e[i][j].r = rnd(s * 18 + i * 3 + j);
                lattice[s].e[i][j].i = rnd(s * 18 + 9 + i * 3 + j);
            }}
        }}
    }}
}}
void kernel() {{
    for (int s = 0; s < SITES; s++) {{
        for (int i = 0; i < 3; i++) {{
            double xr = 0.0;
            double xi = 0.0;
            for (int j = 0; j < 3; j++) {{
                double yr = lattice[s].e[i][j].r * vec[s].c[j].r -
                            lattice[s].e[i][j].i * vec[s].c[j].i;
                double yi = lattice[s].e[i][j].r * vec[s].c[j].i +
                            lattice[s].e[i][j].i * vec[s].c[j].r;
                xr += yr;
                xi += yi;
            }}
            out_vec[s].c[i].r = xr;
            out_vec[s].c[i].i = xi;
        }}
    }}
}}
void finish() {{
    for (int i = 0; i < 3; i++) {{
        for (int s = 0; s < SITES; s++) {{
            canon_r[i][s] = out_vec[s].c[i].r;
            canon_i[i][s] = out_vec[s].c[i].i;
        }}
    }}
}}
void main() {{ init(); kernel(); finish(); }}
"#
    );
    Kernel {
        name: "milc",
        group: Group::Study,
        variant: Variant::Original,
        source,
        outputs: &["canon_r", "canon_i"],
    }
}

/// milc after AoS→SoA (Listing 8 bottom): the lattice of matrices becomes a
/// matrix of lattices; the site loop is innermost and unit-stride.
pub fn milc_transformed() -> Kernel {
    let source = format!(
        r#"
{MILC_SIZES}
double lat_r[3][3][SITES];
double lat_i[3][3][SITES];
double vec_r[3][SITES];
double vec_i[3][SITES];
double out_r[3][SITES];
double out_i[3][SITES];
double canon_r[3][SITES];
double canon_i[3][SITES];
{RND}
void init() {{
    for (int s = 0; s < SITES; s++) {{
        for (int i = 0; i < 3; i++) {{
            vec_r[i][s] = rnd(s * 6 + i);
            vec_i[i][s] = rnd(s * 6 + 3 + i);
            for (int j = 0; j < 3; j++) {{
                lat_r[i][j][s] = rnd(s * 18 + i * 3 + j);
                lat_i[i][j][s] = rnd(s * 18 + 9 + i * 3 + j);
            }}
        }}
    }}
    for (int i = 0; i < 3; i++)
        for (int s = 0; s < SITES; s++) {{
            out_r[i][s] = 0.0;
            out_i[i][s] = 0.0;
        }}
}}
void kernel() {{
    for (int i = 0; i < 3; i++) {{
        for (int j = 0; j < 3; j++) {{
            for (int s = 0; s < SITES; s++) {{
                double x_r = lat_r[i][j][s] * vec_r[j][s] -
                             lat_i[i][j][s] * vec_i[j][s];
                double x_i = lat_r[i][j][s] * vec_i[j][s] +
                             lat_i[i][j][s] * vec_r[j][s];
                out_r[i][s] += x_r;
                out_i[i][s] += x_i;
            }}
        }}
    }}
}}
void finish() {{
    for (int i = 0; i < 3; i++) {{
        for (int s = 0; s < SITES; s++) {{
            canon_r[i][s] = out_r[i][s];
            canon_i[i][s] = out_i[i][s];
        }}
    }}
}}
void main() {{ init(); kernel(); finish(); }}
"#
    );
    Kernel {
        name: "milc",
        group: Group::Study,
        variant: Variant::Transformed,
        source,
        outputs: &["canon_r", "canon_i"],
    }
}

const GROMACS_SIZES: &str = "const int NJ = 64;\n";

/// 435.gromacs `innerf.f`-style indirection loop, original (Listing 9 top):
/// `jjnr` scatters the `pos`/`faction` accesses, so icc must assume the
/// iterations conflict.
pub fn gromacs_original() -> Kernel {
    let source = format!(
        r#"
{GROMACS_SIZES}
int jjnr[NJ];
double pos[192];
double faction[192];
{RND}
void init() {{
    for (int k = 0; k < NJ; k++) {{
        jjnr[k] = (k * 37) % NJ;
    }}
    for (int k = 0; k < 192; k++) {{
        pos[k] = rnd(k);
        faction[k] = rnd(k + 500);
    }}
}}
void kernel() {{
    for (int k = 0; k < NJ; k++) {{
        int jnr = jjnr[k];
        int j3 = 3 * jnr;
        double jx1 = pos[j3];
        double jy1 = pos[j3 + 1];
        double jz1 = pos[j3 + 2];
        double rsq = jx1 * jx1 + jy1 * jy1 + jz1 * jz1;
        double rinv = 1.0 / (rsq + 0.25);
        double rinvsq = rinv * rinv;
        double vnb6 = rinvsq * rinvsq * rinvsq;
        double vnb12 = vnb6 * vnb6;
        double rinvsqrt = 1.0 / sqrt(rsq + 0.25);
        double krsq = 0.3 * rsq;
        double vcoul = 0.8 * rinvsqrt + krsq * rinvsq;
        double fscoul = (0.8 * rinvsqrt + 2.0 * krsq - vcoul) * rinvsq;
        double fs = (12.0 * vnb12 - 6.0 * vnb6) * rinvsq + 0.75 * rinv + fscoul;
        double tx11 = fs * jx1;
        double ty11 = fs * jy1;
        double tz11 = fs * jz1;
        double tx21 = jx1 * jy1 * 0.125;
        double ty21 = jy1 * jz1 * 0.125;
        double tz21 = jz1 * jx1 * 0.125;
        faction[j3] = faction[j3] - tx11 - tx21;
        faction[j3 + 1] = faction[j3 + 1] - ty11 - ty21;
        faction[j3 + 2] = faction[j3 + 2] - tz11 - tz21;
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    Kernel {
        name: "gromacs",
        group: Group::Study,
        variant: Variant::Original,
        source,
        outputs: &["faction"],
    }
}

/// gromacs after the paper's strip-mine + loop distribution (Listing 9
/// bottom): gathers, a vectorizable middle compute loop, then scatters.
pub fn gromacs_transformed() -> Kernel {
    let source = format!(
        r#"
{GROMACS_SIZES}
int jjnr[NJ];
double pos[192];
double faction[192];
{RND}
void init() {{
    for (int k = 0; k < NJ; k++) {{
        jjnr[k] = (k * 37) % NJ;
    }}
    for (int k = 0; k < 192; k++) {{
        pos[k] = rnd(k);
        faction[k] = rnd(k + 500);
    }}
}}
void kernel() {{
    int vect_j3[4];
    double vect_jx1[4];
    double vect_jy1[4];
    double vect_jz1[4];
    double vect_fx[4];
    double vect_fy[4];
    double vect_fz[4];
    for (int k = 0; k < NJ; k += 4) {{
        for (int kv = 0; kv < 4; kv++) {{
            int jnr = jjnr[k + kv];
            int j3 = 3 * jnr;
            vect_j3[kv] = j3;
            vect_jx1[kv] = pos[j3];
            vect_jy1[kv] = pos[j3 + 1];
            vect_jz1[kv] = pos[j3 + 2];
            vect_fx[kv] = faction[j3];
            vect_fy[kv] = faction[j3 + 1];
            vect_fz[kv] = faction[j3 + 2];
        }}
        for (int kv = 0; kv < 4; kv++) {{
            double jx1 = vect_jx1[kv];
            double jy1 = vect_jy1[kv];
            double jz1 = vect_jz1[kv];
            double rsq = jx1 * jx1 + jy1 * jy1 + jz1 * jz1;
            double rinv = 1.0 / (rsq + 0.25);
            double rinvsq = rinv * rinv;
            double vnb6 = rinvsq * rinvsq * rinvsq;
            double vnb12 = vnb6 * vnb6;
            double rinvsqrt = 1.0 / sqrt(rsq + 0.25);
            double krsq = 0.3 * rsq;
            double vcoul = 0.8 * rinvsqrt + krsq * rinvsq;
            double fscoul = (0.8 * rinvsqrt + 2.0 * krsq - vcoul) * rinvsq;
            double fs = (12.0 * vnb12 - 6.0 * vnb6) * rinvsq + 0.75 * rinv + fscoul;
            double tx11 = fs * jx1;
            double ty11 = fs * jy1;
            double tz11 = fs * jz1;
            double tx21 = jx1 * jy1 * 0.125;
            double ty21 = jy1 * jz1 * 0.125;
            double tz21 = jz1 * jx1 * 0.125;
            vect_fx[kv] = vect_fx[kv] - tx11 - tx21;
            vect_fy[kv] = vect_fy[kv] - ty11 - ty21;
            vect_fz[kv] = vect_fz[kv] - tz11 - tz21;
        }}
        for (int kv = 0; kv < 4; kv++) {{
            int j3 = vect_j3[kv];
            faction[j3] = vect_fx[kv];
            faction[j3 + 1] = vect_fy[kv];
            faction[j3 + 2] = vect_fz[kv];
        }}
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    Kernel {
        name: "gromacs",
        group: Group::Study,
        variant: Variant::Transformed,
        source,
        outputs: &["faction"],
    }
}
