//! The paper's inline listings (Listings 1–4) as runnable kernels.
//!
//! These are the tiny examples the paper uses to *explain* the analysis
//! (§2, §3.3); the figures and several tests are built on them. Keeping
//! them here, next to the evaluation kernels, makes every piece of code the
//! paper shows executable.

use crate::{Group, Kernel, Variant};

/// Listing 1: a serial chain (S1) feeding a per-column recurrence (S2).
///
/// ```text
/// for (i = 1; i < N; ++i) A[i] = 2.0 * A[i-1];            // S1
/// for (i = 0; i < N; ++i)
///   for (j = 1; j < N; ++j) B[j][i] = B[j-1][i] * A[i];   // S2
/// ```
///
/// Figure 1 derives from this: S2's instances with equal `j` form one
/// partition of size N.
pub fn listing1(n: u64) -> Kernel {
    let source = format!(
        r#"
const int N = {n};
double a[N];
double b[N][N];
void main() {{
    a[0] = 1.0;
    for (int j = 0; j < N; j++) {{ b[0][j] = (double)(j + 1); }}
    for (int i = 1; i < N; i++) {{ a[i] = 2.0 * a[i-1]; }}
    for (int i = 0; i < N; i++)
        for (int j = 1; j < N; j++)
            b[j][i] = b[j-1][i] * a[i];
}}
"#
    );
    Kernel {
        name: "listing1",
        group: Group::Study,
        variant: Variant::Sole,
        source,
        outputs: &["b"],
    }
}

/// Listing 2: the loop-carried S2→S1 dependence that defeats loop-level
/// analysis (Figure 2).
///
/// ```text
/// for (i = 1; i < N; ++i) {
///   A[i] = 2.0 * B[i-1];   // S1
///   B[i] = 0.5 * C[i];     // S2
/// }
/// ```
pub fn listing2(n: u64) -> Kernel {
    let source = format!(
        r#"
const int N = {n};
double a[N];
double b[N];
double c[N];
void main() {{
    for (int i = 0; i < N; i++) {{ c[i] = (double)(i + 1) * 0.5; }}
    b[0] = 1.0;
    for (int i = 1; i < N; i++) {{
        a[i] = 2.0 * b[i-1];
        b[i] = 0.5 * c[i];
    }}
}}
"#
    );
    Kernel {
        name: "listing2",
        group: Group::Study,
        variant: Variant::Sole,
        source,
        outputs: &["a", "b"],
    }
}

/// Listing 3: the paper's data-layout motivation — a column-recurrence loop
/// whose parallel dimension has stride N, and an array-of-structures loop
/// with stride-2 field access.
///
/// ```text
/// for (i) for (j) A[i][j] = 2*A[i][j-1] - A[i][j-2];      // S1
/// for (i) { C[i].x = B[i].x + B[i].y;                     // S2
///           C[i].y = B[i].x - B[i].y; }                   // S3
/// ```
pub fn listing3_original(n: u64) -> Kernel {
    let source = format!(
        r#"
const int N = {n};
double a[N][N];
struct pt {{ double x; double y; }};
pt b[N];
pt c[N];
double rnd(int k) {{
    int h = (k * 1103515245 + 12345) % 100000;
    if (h < 0) {{ h = -h; }}
    return (double)h * 0.00001;
}}
void init() {{
    for (int i = 0; i < N; i++) {{
        for (int j = 0; j < N; j++) {{ a[i][j] = rnd(i * N + j); }}
        b[i].x = rnd(i + 7000);
        b[i].y = rnd(i + 8000);
    }}
}}
void kernel() {{
    for (int i = 0; i < N; i++)
        for (int j = 2; j < N; j++)
            a[i][j] = 2.0 * a[i][j-1] - a[i][j-2];
    for (int i = 0; i < N; i++) {{
        c[i].x = b[i].x + b[i].y;
        c[i].y = b[i].x - b[i].y;
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    Kernel {
        name: "listing3",
        group: Group::Study,
        variant: Variant::Original,
        source,
        outputs: &["a"],
    }
}

/// Listing 4: the paper's transformed Listing 3 — loops interchanged with a
/// transposed array, and the array-of-structures converted to a
/// structure-of-arrays. Both loops become unit-stride and vectorizable.
pub fn listing3_transformed(n: u64) -> Kernel {
    let source = format!(
        r#"
const int N = {n};
double at[N][N];   // transposed: at[j][i] == a[i][j]
double bx[N];
double by[N];
double cx[N];
double cy[N];
double rnd(int k) {{
    int h = (k * 1103515245 + 12345) % 100000;
    if (h < 0) {{ h = -h; }}
    return (double)h * 0.00001;
}}
void init() {{
    for (int i = 0; i < N; i++) {{
        for (int j = 0; j < N; j++) {{ at[j][i] = rnd(i * N + j); }}
        bx[i] = rnd(i + 7000);
        by[i] = rnd(i + 8000);
    }}
}}
void kernel() {{
    for (int j = 2; j < N; j++)
        for (int i = 0; i < N; i++)
            at[j][i] = 2.0 * at[j-1][i] - at[j-2][i];
    for (int i = 0; i < N; i++) {{
        cx[i] = bx[i] + by[i];
        cy[i] = bx[i] - by[i];
    }}
}}
void main() {{ init(); kernel(); }}
"#
    );
    Kernel {
        name: "listing3",
        group: Group::Study,
        variant: Variant::Transformed,
        source,
        outputs: &["at"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorscope_interp::Vm;

    #[test]
    fn listings_compile_and_run() {
        for k in [
            listing1(8),
            listing2(8),
            listing3_original(8),
            listing3_transformed(8),
        ] {
            let module = k.compile().unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let mut vm = Vm::new(&module);
            vm.run_main().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn listing3_values_match_across_layouts() {
        let n = 8u64;
        let orig = listing3_original(n);
        let trans = listing3_transformed(n);
        let mo = orig.compile().unwrap();
        let mt = trans.compile().unwrap();
        let mut vo = Vm::new(&mo);
        vo.run_main().unwrap();
        let mut vt = Vm::new(&mt);
        vt.run_main().unwrap();
        for i in 0..n {
            for j in 0..n {
                let a = vo.read_global("a", i * n + j);
                let at = vt.read_global("at", j * n + i);
                assert_eq!(a, at, "a[{i}][{j}] vs at[{j}][{i}]");
            }
        }
    }
}
