//! Offline minimal benchmarking harness.
//!
//! The build environment of this repository cannot reach crates.io, so this
//! crate implements the subset of the `criterion` API that the vectorscope
//! benches use: [`Criterion`], benchmark groups with throughput annotation,
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a simple warm-up +
//! calibrated-batch timing loop around `std::time::Instant`; results are
//! printed one line per benchmark and kept on the [`Criterion`] instance
//! (see [`Criterion::results`]) so harness code can post-process them.

use std::time::Instant;

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully qualified benchmark id (`group/name` or bare name).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured (after warm-up).
    pub iterations: u64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

/// Work performed per iteration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times one closure; created by the harness and passed to bench bodies.
pub struct Bencher {
    ns_per_iter: f64,
    iterations: u64,
}

/// Target wall-clock time for the measured phase of one benchmark.
const MEASURE_TARGET_NS: u128 = 200_000_000;

impl Bencher {
    /// Calls `routine` repeatedly: a short warm-up sizes the batch, then the
    /// batch is timed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until 10ms or 50 iterations to estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed().as_millis() >= 10 || warm_iters >= 50 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() / warm_iters as u128).max(1);
        let iters = ((MEASURE_TARGET_NS / est_ns).clamp(10, 1_000_000)) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.ns_per_iter = total / iters as f64;
        self.iterations = iters;
    }
}

/// The top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// All results measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let result = run_one(id.to_string(), None, f);
        self.results.push(result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let result = run_one(full, self.throughput, f);
        self.criterion.results.push(result);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let result = run_one(full, self.throughput, |b| f(b, input));
        self.criterion.results.push(result);
        self
    }

    /// Ends the group (printing is per-benchmark; nothing extra to do).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: String,
    throughput: Option<Throughput>,
    mut f: F,
) -> BenchResult {
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    let result = BenchResult {
        id,
        ns_per_iter: bencher.ns_per_iter,
        iterations: bencher.iterations,
        throughput,
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "  thrpt: {:>12.3} Melem/s",
                n as f64 / result.ns_per_iter * 1e3
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  thrpt: {:>12.3} MiB/s",
                n as f64 / result.ns_per_iter * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "{:<40} time: {:>12} /iter  ({} iters){}",
        result.id,
        format_ns(result.ns_per_iter),
        result.iterations,
        rate
    );
    result
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
