//! Offline minimal scoped work-pool.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate implements — on `std::thread` only — the deterministic
//! fork-join subset that the vectorscope workspace uses in place of
//! `rayon`: [`par_map`], [`try_par_map`], [`par_chunks`], and a re-exported
//! [`scope`].
//!
//! # Determinism contract
//!
//! Every function in this crate is **bit-deterministic at any thread
//! count**: workers pull item *indices* from a shared atomic counter,
//! compute independently, and the results are scattered back into
//! pre-indexed output slots. The caller observes results in input order,
//! never in completion order, so there are no order-dependent reductions —
//! `par_map(n, items, f)` returns exactly what `items.iter().map(f)` would,
//! for every `n`. [`try_par_map`] likewise always reports the error of the
//! **lowest-indexed** failing item, regardless of which worker hit an error
//! first on the wall clock.
//!
//! # Thread-count resolution
//!
//! Call sites pass a *requested* thread count, where `0` means "pick for
//! me": [`resolve_threads`] then consults the `VSCOPE_THREADS` environment
//! variable, and if that is unset, invalid, or itself `0`, falls back to
//! [`std::thread::available_parallelism`], clamped to at least 1. An
//! explicit nonzero request always wins over the environment, so library
//! callers can pin a stage to one thread (e.g. to avoid nested fan-out).

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Structured concurrency entry point, re-exported from the standard
/// library: `scope(|s| { s.spawn(..); .. })` joins every spawned thread
/// before returning. The [`par_map`] family is built on it; it is exposed
/// for callers that need irregular fork-join shapes.
pub use std::thread::scope;

/// The environment variable consulted when a requested thread count is 0.
pub const THREADS_ENV: &str = "VSCOPE_THREADS";

/// The machine's available parallelism, clamped to at least 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1)
}

/// Resolves a requested thread count to an effective one.
///
/// * `requested > 0` — used as-is.
/// * `requested == 0` — the `VSCOPE_THREADS` environment variable, if set
///   to a positive integer; otherwise (unset, unparsable, or `0`)
///   [`available_threads`].
///
/// The result is always ≥ 1.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let from_env = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if from_env > 0 {
        from_env
    } else {
        available_threads()
    }
}

/// Maps `f` over `items` on up to `threads` worker threads (0 ⇒ resolve via
/// [`resolve_threads`]), returning the results **in input order**.
///
/// `f` receives `(index, &item)`. Work is distributed dynamically (an
/// atomic cursor), but each result is written into its own pre-indexed
/// slot, so the output is byte-identical at every thread count. Runs
/// inline, with no thread spawned, when one worker (or one item) suffices.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers have been joined.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = resolve_threads(threads).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    // Each worker keeps (index, result) pairs locally; the
                    // joining thread scatters them into the slots, so no
                    // lock sits on the compute path.
                    let mut produced: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        produced.push((i, f(i, item)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            let produced = match handle.join() {
                Ok(p) => p,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, value) in produced {
                slots[i] = Some(value);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// Fallible [`par_map`]: maps `f` over `items` and returns either every
/// success (in input order) or the error of the **lowest-indexed** failing
/// item.
///
/// All items are evaluated even when one fails, so which error is returned
/// never depends on thread scheduling — the sequential engine and every
/// parallel configuration report the same error. A failing worker does not
/// panic, deadlock, or poison anything: its `Err` simply wins the
/// index-ordered scan at the end.
///
/// # Errors
///
/// The `Err` of the lowest-indexed item for which `f` returned `Err`.
pub fn try_par_map<T, U, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    par_map(threads, items, f).into_iter().collect()
}

/// Maps `f` over contiguous chunks of `items` (the last chunk may be
/// shorter), in parallel, returning per-chunk results in chunk order.
///
/// `f` receives `(chunk_index, chunk)`. `chunk_size` is clamped to ≥ 1.
pub fn par_chunks<T, U, F>(threads: usize, items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    let chunks: Vec<&[T]> = items.chunks(chunk_size.max(1)).collect();
    par_map(threads, &chunks, |i, chunk| f(i, chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 7, 64] {
            let got = par_map(threads, &items, |_, &x| x * x + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_passes_matching_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(3, &items, |i, &s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(8, &none, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[42], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1, 2, 3];
        assert_eq!(par_map(100, &items, |_, &x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn try_par_map_returns_lowest_indexed_error() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 2, 7] {
            let got: Result<Vec<u32>, String> = try_par_map(threads, &items, |_, &x| {
                if x % 30 == 17 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            });
            // 17, 47, 77 all fail; 17 must win regardless of scheduling.
            assert_eq!(got, Err("bad 17".to_string()), "threads = {threads}");
        }
    }

    #[test]
    fn try_par_map_error_does_not_poison_successes() {
        // After a failing batch, a fresh call on the same data succeeds:
        // nothing is cached, locked, or left behind.
        let items = vec![1, 2, 3];
        let fail: Result<Vec<i32>, &str> =
            try_par_map(4, &items, |_, &x| if x == 2 { Err("two") } else { Ok(x) });
        assert_eq!(fail, Err("two"));
        let ok: Result<Vec<i32>, &str> = try_par_map(4, &items, |_, &x| Ok(x * 2));
        assert_eq!(ok, Ok(vec![2, 4, 6]));
    }

    #[test]
    fn par_chunks_covers_everything_in_chunk_order() {
        let items: Vec<u64> = (0..10).collect();
        let sums = par_chunks(4, &items, 3, |_, chunk| chunk.iter().sum::<u64>());
        assert_eq!(sums, vec![3, 12, 21, 9]);
        // chunk_size 0 clamps to 1.
        let ones = par_chunks(2, &items, 0, |_, chunk| chunk.len());
        assert_eq!(ones, vec![1; 10]);
    }

    #[test]
    fn resolve_threads_is_clamped_to_at_least_one() {
        // Explicit requests pass through; 0 resolves to something >= 1 no
        // matter what the machine or environment says.
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn every_item_is_computed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..500).collect();
        let got = par_map(7, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(got, items);
        assert_eq!(calls.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn worker_panic_propagates_after_join() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, &x| {
                if x == 9 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
