//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for smaller
    /// instances and returns the strategy for one level up. `depth` bounds
    /// the nesting; the size/branch hints are accepted for API parity but
    /// unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut acc = leaf.clone();
        for _ in 0..depth {
            let branch = f(acc).boxed();
            let leaf = leaf.clone();
            // Mix in leaves so generated sizes vary below the depth bound.
            acc = BoxedStrategy::new(move |rng| {
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        acc
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (the `any::<T>()` entry
/// point).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, reasonably sized magnitudes: raw bit patterns would be
        // NaN/Inf a quarter of the time, which no caller here wants.
        (rng.next_u64() as i64 % (1 << 32)) as f64 / 65536.0
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0)
    (S0, S1)
    (S0, S1, S2)
    (S0, S1, S2, S3)
    (S0, S1, S2, S3, S4)
    (S0, S1, S2, S3, S4, S5)
}

/// String-pattern strategy: a `&'static str` acts as a simplified regex of
/// the form `.{lo,hi}` or `[class]{lo,hi}`, the two shapes used by this
/// workspace's fuzz tests. Character classes support ranges (`a-z`),
/// literal members, and backslash escapes (`\-`, `\[`, `\]`, `\\`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern strategy: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Splits `atom{lo,hi}` into the atom's alphabet and the length bounds.
fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let open = pat.rfind('{')?;
    let close = pat.rfind('}')?;
    if close != pat.len() - 1 || close < open {
        return None;
    }
    let (lo, hi) = pat[open + 1..close].split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    if hi < lo {
        return None;
    }
    let atom = &pat[..open];
    let alphabet = if atom == "." {
        // Printable ASCII.
        (0x20u8..0x7f).map(char::from).collect()
    } else {
        let inner = atom.strip_prefix('[')?.strip_suffix(']')?;
        parse_class(inner)?
    };
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Expands a character-class body into its member set.
fn parse_class(body: &str) -> Option<Vec<char>> {
    let mut members = Vec::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = match chars[i] {
            '\\' => {
                i += 1;
                match *chars.get(i)? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            }
            other => other,
        };
        // A `-` between two plain members denotes a range.
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let end = chars[i + 2];
            if end != '\\' {
                for x in c as u32..=end as u32 {
                    members.push(char::from_u32(x)?);
                }
                i += 3;
                continue;
            }
        }
        members.push(c);
        i += 1;
    }
    Some(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (-100i64..100).generate(&mut rng);
            assert!((-100..100).contains(&v));
            let w = (0u8..4).generate(&mut rng);
            assert!(w < 4);
            let x = (-8i32..=8).generate(&mut rng);
            assert!((-8..=8).contains(&x));
        }
    }

    #[test]
    fn class_patterns_expand() {
        let (alphabet, lo, hi) = parse_pattern("[a-c0-1\\-x]{2,5}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '0', '1', '-', 'x']);
        assert_eq!((lo, hi), (2, 5));
        let (dot, lo, hi) = parse_pattern(".{0,20}").unwrap();
        assert!(dot.contains(&'A') && dot.contains(&'~'));
        assert_eq!((lo, hi), (0, 20));
    }

    #[test]
    fn union_and_map_compose() {
        let mut rng = TestRng::new(3);
        let s = crate::prop_oneof![(0i32..5).prop_map(|v| v * 2), Just(100i32),];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 100 || (v % 2 == 0 && v < 10));
        }
    }
}
