//! Offline minimal property-testing harness.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate implements — from scratch, on `std` only — the subset of the
//! `proptest` API that the vectorscope workspace uses:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, and `boxed`,
//! * strategies for integer ranges, tuples, [`Just`], [`any`], vectors
//!   ([`collection::vec`]), and simple regex-like string patterns,
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros,
//! * a deterministic per-test RNG, so failures are reproducible.
//!
//! There is no shrinking: a failing case panics with the formatted assertion
//! message (which, in this workspace's tests, always embeds the offending
//! values). Each test function derives its RNG seed from its fully
//! qualified name, so runs are stable across processes and machines.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    /// Alias so `prop::collection::vec(..)` resolves, as in real proptest.
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property-test functions: each `name(pattern in strategy, ..)`
/// body runs for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}
