//! Deterministic RNG and run configuration.

/// How many cases each property runs; mirrors `proptest::test_runner`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64 — tiny, fast, and deterministic. Seeded from the test's
/// fully qualified name so every run of a given test sees the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Creates an RNG seeded from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping is fine for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}
